
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/alltoall.cpp" "src/coll/CMakeFiles/bgl_coll.dir/alltoall.cpp.o" "gcc" "src/coll/CMakeFiles/bgl_coll.dir/alltoall.cpp.o.d"
  "/root/repo/src/coll/direct.cpp" "src/coll/CMakeFiles/bgl_coll.dir/direct.cpp.o" "gcc" "src/coll/CMakeFiles/bgl_coll.dir/direct.cpp.o.d"
  "/root/repo/src/coll/many_to_many.cpp" "src/coll/CMakeFiles/bgl_coll.dir/many_to_many.cpp.o" "gcc" "src/coll/CMakeFiles/bgl_coll.dir/many_to_many.cpp.o.d"
  "/root/repo/src/coll/selector.cpp" "src/coll/CMakeFiles/bgl_coll.dir/selector.cpp.o" "gcc" "src/coll/CMakeFiles/bgl_coll.dir/selector.cpp.o.d"
  "/root/repo/src/coll/tps.cpp" "src/coll/CMakeFiles/bgl_coll.dir/tps.cpp.o" "gcc" "src/coll/CMakeFiles/bgl_coll.dir/tps.cpp.o.d"
  "/root/repo/src/coll/vmesh.cpp" "src/coll/CMakeFiles/bgl_coll.dir/vmesh.cpp.o" "gcc" "src/coll/CMakeFiles/bgl_coll.dir/vmesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/bgl_network.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bgl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bgl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bgl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bgl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
