file(REMOVE_RECURSE
  "libbgl_trace.a"
)
