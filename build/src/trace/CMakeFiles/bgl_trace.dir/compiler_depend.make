# Empty compiler generated dependencies file for bgl_trace.
# This may be replaced when dependencies are built.
