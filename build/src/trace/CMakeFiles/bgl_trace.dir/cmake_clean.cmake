file(REMOVE_RECURSE
  "CMakeFiles/bgl_trace.dir/csv.cpp.o"
  "CMakeFiles/bgl_trace.dir/csv.cpp.o.d"
  "CMakeFiles/bgl_trace.dir/heatmap.cpp.o"
  "CMakeFiles/bgl_trace.dir/heatmap.cpp.o.d"
  "CMakeFiles/bgl_trace.dir/journey.cpp.o"
  "CMakeFiles/bgl_trace.dir/journey.cpp.o.d"
  "CMakeFiles/bgl_trace.dir/stats.cpp.o"
  "CMakeFiles/bgl_trace.dir/stats.cpp.o.d"
  "libbgl_trace.a"
  "libbgl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
