file(REMOVE_RECURSE
  "CMakeFiles/bgl_util.dir/cli.cpp.o"
  "CMakeFiles/bgl_util.dir/cli.cpp.o.d"
  "CMakeFiles/bgl_util.dir/table.cpp.o"
  "CMakeFiles/bgl_util.dir/table.cpp.o.d"
  "libbgl_util.a"
  "libbgl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
