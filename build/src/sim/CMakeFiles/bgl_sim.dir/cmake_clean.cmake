file(REMOVE_RECURSE
  "CMakeFiles/bgl_sim.dir/engine.cpp.o"
  "CMakeFiles/bgl_sim.dir/engine.cpp.o.d"
  "CMakeFiles/bgl_sim.dir/event_queue.cpp.o"
  "CMakeFiles/bgl_sim.dir/event_queue.cpp.o.d"
  "libbgl_sim.a"
  "libbgl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
