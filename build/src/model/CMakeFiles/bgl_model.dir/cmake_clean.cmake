file(REMOVE_RECURSE
  "CMakeFiles/bgl_model.dir/calibrate.cpp.o"
  "CMakeFiles/bgl_model.dir/calibrate.cpp.o.d"
  "CMakeFiles/bgl_model.dir/peak.cpp.o"
  "CMakeFiles/bgl_model.dir/peak.cpp.o.d"
  "CMakeFiles/bgl_model.dir/predict.cpp.o"
  "CMakeFiles/bgl_model.dir/predict.cpp.o.d"
  "libbgl_model.a"
  "libbgl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
