file(REMOVE_RECURSE
  "libbgl_network.a"
)
