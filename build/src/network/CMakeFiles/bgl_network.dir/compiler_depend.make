# Empty compiler generated dependencies file for bgl_network.
# This may be replaced when dependencies are built.
