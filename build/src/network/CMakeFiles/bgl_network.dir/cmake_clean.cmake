file(REMOVE_RECURSE
  "CMakeFiles/bgl_network.dir/fabric.cpp.o"
  "CMakeFiles/bgl_network.dir/fabric.cpp.o.d"
  "libbgl_network.a"
  "libbgl_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
