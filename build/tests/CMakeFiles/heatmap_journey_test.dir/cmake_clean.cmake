file(REMOVE_RECURSE
  "CMakeFiles/heatmap_journey_test.dir/heatmap_journey_test.cpp.o"
  "CMakeFiles/heatmap_journey_test.dir/heatmap_journey_test.cpp.o.d"
  "heatmap_journey_test"
  "heatmap_journey_test.pdb"
  "heatmap_journey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heatmap_journey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
