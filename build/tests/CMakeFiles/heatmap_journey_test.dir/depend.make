# Empty dependencies file for heatmap_journey_test.
# This may be replaced when dependencies are built.
