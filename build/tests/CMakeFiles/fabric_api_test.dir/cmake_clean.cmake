file(REMOVE_RECURSE
  "CMakeFiles/fabric_api_test.dir/fabric_api_test.cpp.o"
  "CMakeFiles/fabric_api_test.dir/fabric_api_test.cpp.o.d"
  "fabric_api_test"
  "fabric_api_test.pdb"
  "fabric_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
