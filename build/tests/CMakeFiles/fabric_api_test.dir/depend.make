# Empty dependencies file for fabric_api_test.
# This may be replaced when dependencies are built.
