# Empty dependencies file for vmesh_test.
# This may be replaced when dependencies are built.
