file(REMOVE_RECURSE
  "CMakeFiles/vmesh_test.dir/vmesh_test.cpp.o"
  "CMakeFiles/vmesh_test.dir/vmesh_test.cpp.o.d"
  "vmesh_test"
  "vmesh_test.pdb"
  "vmesh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
