file(REMOVE_RECURSE
  "CMakeFiles/fabric_property_test.dir/fabric_property_test.cpp.o"
  "CMakeFiles/fabric_property_test.dir/fabric_property_test.cpp.o.d"
  "fabric_property_test"
  "fabric_property_test.pdb"
  "fabric_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
