# Empty dependencies file for tps_test.
# This may be replaced when dependencies are built.
