file(REMOVE_RECURSE
  "CMakeFiles/tps_test.dir/tps_test.cpp.o"
  "CMakeFiles/tps_test.dir/tps_test.cpp.o.d"
  "tps_test"
  "tps_test.pdb"
  "tps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
