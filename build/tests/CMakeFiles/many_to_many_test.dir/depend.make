# Empty dependencies file for many_to_many_test.
# This may be replaced when dependencies are built.
