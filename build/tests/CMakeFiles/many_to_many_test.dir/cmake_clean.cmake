file(REMOVE_RECURSE
  "CMakeFiles/many_to_many_test.dir/many_to_many_test.cpp.o"
  "CMakeFiles/many_to_many_test.dir/many_to_many_test.cpp.o.d"
  "many_to_many_test"
  "many_to_many_test.pdb"
  "many_to_many_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/many_to_many_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
