# Empty dependencies file for timing_wheel_test.
# This may be replaced when dependencies are built.
