file(REMOVE_RECURSE
  "CMakeFiles/packetizer_test.dir/packetizer_test.cpp.o"
  "CMakeFiles/packetizer_test.dir/packetizer_test.cpp.o.d"
  "packetizer_test"
  "packetizer_test.pdb"
  "packetizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packetizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
