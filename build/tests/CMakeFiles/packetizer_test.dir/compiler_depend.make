# Empty compiler generated dependencies file for packetizer_test.
# This may be replaced when dependencies are built.
