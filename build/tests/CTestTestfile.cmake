# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/timing_wheel_test[1]_include.cmake")
include("/root/repo/build/tests/packetizer_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/calibrate_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_property_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_api_test[1]_include.cmake")
include("/root/repo/build/tests/alltoall_test[1]_include.cmake")
include("/root/repo/build/tests/direct_test[1]_include.cmake")
include("/root/repo/build/tests/tps_test[1]_include.cmake")
include("/root/repo/build/tests/vmesh_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/many_to_many_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/heatmap_journey_test[1]_include.cmake")
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
include("/root/repo/build/tests/selector_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/api_surface_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
