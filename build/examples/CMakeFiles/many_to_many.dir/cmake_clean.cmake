file(REMOVE_RECURSE
  "CMakeFiles/many_to_many.dir/many_to_many.cpp.o"
  "CMakeFiles/many_to_many.dir/many_to_many.cpp.o.d"
  "many_to_many"
  "many_to_many.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/many_to_many.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
