# Empty compiler generated dependencies file for many_to_many.
# This may be replaced when dependencies are built.
