# Empty dependencies file for fig4_direct_strategies.
# This may be replaced when dependencies are built.
