file(REMOVE_RECURSE
  "CMakeFiles/ablation_tps_design.dir/ablation_tps_design.cpp.o"
  "CMakeFiles/ablation_tps_design.dir/ablation_tps_design.cpp.o.d"
  "ablation_tps_design"
  "ablation_tps_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tps_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
