file(REMOVE_RECURSE
  "CMakeFiles/table3_tps.dir/table3_tps.cpp.o"
  "CMakeFiles/table3_tps.dir/table3_tps.cpp.o.d"
  "table3_tps"
  "table3_tps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
