# Empty dependencies file for table3_tps.
# This may be replaced when dependencies are built.
