# Empty compiler generated dependencies file for ablation_router_params.
# This may be replaced when dependencies are built.
