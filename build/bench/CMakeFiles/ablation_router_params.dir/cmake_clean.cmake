file(REMOVE_RECURSE
  "CMakeFiles/ablation_router_params.dir/ablation_router_params.cpp.o"
  "CMakeFiles/ablation_router_params.dir/ablation_router_params.cpp.o.d"
  "ablation_router_params"
  "ablation_router_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_router_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
