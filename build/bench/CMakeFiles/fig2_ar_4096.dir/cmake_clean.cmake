file(REMOVE_RECURSE
  "CMakeFiles/fig2_ar_4096.dir/fig2_ar_4096.cpp.o"
  "CMakeFiles/fig2_ar_4096.dir/fig2_ar_4096.cpp.o.d"
  "fig2_ar_4096"
  "fig2_ar_4096.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ar_4096.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
