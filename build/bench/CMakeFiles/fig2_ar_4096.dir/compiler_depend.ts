# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig2_ar_4096.
