# Empty compiler generated dependencies file for fig2_ar_4096.
# This may be replaced when dependencies are built.
