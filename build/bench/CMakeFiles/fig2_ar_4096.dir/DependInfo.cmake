
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_ar_4096.cpp" "bench/CMakeFiles/fig2_ar_4096.dir/fig2_ar_4096.cpp.o" "gcc" "bench/CMakeFiles/fig2_ar_4096.dir/fig2_ar_4096.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coll/CMakeFiles/bgl_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/bgl_network.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bgl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/bgl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bgl_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bgl_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bgl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bgl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
