file(REMOVE_RECURSE
  "CMakeFiles/ablation_m2m.dir/ablation_m2m.cpp.o"
  "CMakeFiles/ablation_m2m.dir/ablation_m2m.cpp.o.d"
  "ablation_m2m"
  "ablation_m2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_m2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
