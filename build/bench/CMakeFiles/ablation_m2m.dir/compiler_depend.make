# Empty compiler generated dependencies file for ablation_m2m.
# This may be replaced when dependencies are built.
