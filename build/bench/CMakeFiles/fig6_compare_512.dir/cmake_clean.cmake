file(REMOVE_RECURSE
  "CMakeFiles/fig6_compare_512.dir/fig6_compare_512.cpp.o"
  "CMakeFiles/fig6_compare_512.dir/fig6_compare_512.cpp.o.d"
  "fig6_compare_512"
  "fig6_compare_512.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_compare_512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
