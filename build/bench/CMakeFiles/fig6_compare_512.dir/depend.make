# Empty dependencies file for fig6_compare_512.
# This may be replaced when dependencies are built.
