# Empty compiler generated dependencies file for table2_asymmetric_ar.
# This may be replaced when dependencies are built.
