file(REMOVE_RECURSE
  "CMakeFiles/table2_asymmetric_ar.dir/table2_asymmetric_ar.cpp.o"
  "CMakeFiles/table2_asymmetric_ar.dir/table2_asymmetric_ar.cpp.o.d"
  "table2_asymmetric_ar"
  "table2_asymmetric_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_asymmetric_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
