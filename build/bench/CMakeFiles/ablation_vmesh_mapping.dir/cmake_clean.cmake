file(REMOVE_RECURSE
  "CMakeFiles/ablation_vmesh_mapping.dir/ablation_vmesh_mapping.cpp.o"
  "CMakeFiles/ablation_vmesh_mapping.dir/ablation_vmesh_mapping.cpp.o.d"
  "ablation_vmesh_mapping"
  "ablation_vmesh_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vmesh_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
