# Empty compiler generated dependencies file for ablation_vmesh_mapping.
# This may be replaced when dependencies are built.
