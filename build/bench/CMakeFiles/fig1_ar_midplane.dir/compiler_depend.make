# Empty compiler generated dependencies file for fig1_ar_midplane.
# This may be replaced when dependencies are built.
