file(REMOVE_RECURSE
  "CMakeFiles/fig1_ar_midplane.dir/fig1_ar_midplane.cpp.o"
  "CMakeFiles/fig1_ar_midplane.dir/fig1_ar_midplane.cpp.o.d"
  "fig1_ar_midplane"
  "fig1_ar_midplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ar_midplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
