file(REMOVE_RECURSE
  "CMakeFiles/table1_symmetric_ar.dir/table1_symmetric_ar.cpp.o"
  "CMakeFiles/table1_symmetric_ar.dir/table1_symmetric_ar.cpp.o.d"
  "table1_symmetric_ar"
  "table1_symmetric_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_symmetric_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
