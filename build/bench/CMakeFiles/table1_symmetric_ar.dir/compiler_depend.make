# Empty compiler generated dependencies file for table1_symmetric_ar.
# This may be replaced when dependencies are built.
