# Empty compiler generated dependencies file for text_mpi_vs_ar.
# This may be replaced when dependencies are built.
