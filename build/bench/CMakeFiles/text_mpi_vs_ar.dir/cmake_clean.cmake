file(REMOVE_RECURSE
  "CMakeFiles/text_mpi_vs_ar.dir/text_mpi_vs_ar.cpp.o"
  "CMakeFiles/text_mpi_vs_ar.dir/text_mpi_vs_ar.cpp.o.d"
  "text_mpi_vs_ar"
  "text_mpi_vs_ar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_mpi_vs_ar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
