file(REMOVE_RECURSE
  "CMakeFiles/ablation_randomization.dir/ablation_randomization.cpp.o"
  "CMakeFiles/ablation_randomization.dir/ablation_randomization.cpp.o.d"
  "ablation_randomization"
  "ablation_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
