file(REMOVE_RECURSE
  "CMakeFiles/ablation_credit_fc.dir/ablation_credit_fc.cpp.o"
  "CMakeFiles/ablation_credit_fc.dir/ablation_credit_fc.cpp.o.d"
  "ablation_credit_fc"
  "ablation_credit_fc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_credit_fc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
