# Empty dependencies file for ablation_credit_fc.
# This may be replaced when dependencies are built.
