# Empty compiler generated dependencies file for fig7_compare_4096.
# This may be replaced when dependencies are built.
