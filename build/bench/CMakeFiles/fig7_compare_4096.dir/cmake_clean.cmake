file(REMOVE_RECURSE
  "CMakeFiles/fig7_compare_4096.dir/fig7_compare_4096.cpp.o"
  "CMakeFiles/fig7_compare_4096.dir/fig7_compare_4096.cpp.o.d"
  "fig7_compare_4096"
  "fig7_compare_4096.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_compare_4096.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
