// schedule_lint: static validation and inspection of strategy schedules.
//
//   schedule_lint --strategy TPS --shape 8x4x4 --size 300
//   schedule_lint --strategy VMesh --shape 4x4x4 --faults node:2,seed:7
//   schedule_lint --strategy AR --shape 2x2x1 --dump-csv
//   schedule_lint --list
//
// Builds the named strategy's CommSchedule for the shape/size (under an
// optional fault plan) and runs the static linter: pair coverage, dependency
// acyclicity, FIFO budget, relay liveness. No simulation is run.
//
// Exit codes: 0 = schedule lints clean, 1 = lint issues found, 2 = usage error.
#include <cstdio>
#include <exception>
#include <string>

#include "src/coll/registry.hpp"
#include "src/coll/schedule_lint.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace bgl;

  util::Cli cli(argc, argv);
  cli.describe("list", "list registered strategies and exit");
  cli.describe("strategy", "strategy name (see --list); required unless --list");
  cli.describe("shape", "partition shape, e.g. 8x4x4 (default 4x4x4)");
  cli.describe("size", "message bytes per destination (default 300)");
  cli.describe("seed", "schedule randomization seed (default 1)");
  cli.describe("faults", "fault spec, e.g. link:0.05,node:2,seed:7 (see faults.hpp)");
  cli.describe("dump-csv", "print the transfer table as CSV to stdout");
  cli.describe("dump-json", "print the schedule summary + transfers as JSON");
  cli.describe("quiet", "suppress the report line; exit code only");
  cli.validate();

  if (cli.get_bool("list", false)) {
    for (const coll::StrategyInfo& info : coll::strategy_registry()) {
      std::printf("%-12s %s\n", info.name, info.summary);
    }
    return 0;
  }

  const std::string name = cli.get("strategy", "");
  if (name.empty()) {
    std::fprintf(stderr, "%s: --strategy is required (try --list)\n",
                 cli.program().c_str());
    return 2;
  }
  const coll::StrategyInfo* info = coll::find_strategy(name);
  if (info == nullptr) {
    std::fprintf(stderr, "%s: unknown strategy '%s' (try --list)\n",
                 cli.program().c_str(), name.c_str());
    return 2;
  }

  coll::AlltoallOptions options;
  options.net.shape = util::shape_arg_or_exit(cli.get("shape", "4x4x4"), cli.program());
  options.net.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  options.msg_bytes = static_cast<std::uint64_t>(cli.get_int("size", 300));

  const std::string fault_spec = cli.get("faults", "");
  if (!fault_spec.empty()) options.net.faults = net::parse_fault_spec(fault_spec);
  const net::FaultPlan plan(options.net, options.net.shape);
  const net::FaultPlan* faults = plan.enabled() ? &plan : nullptr;

  const coll::CommSchedule sched =
      info->build(options.net, options.msg_bytes, options, faults);
  const coll::LintReport report = coll::schedule_lint(sched, faults);

  if (cli.get_bool("dump-csv", false)) {
    std::fputs(sched.to_csv(faults).c_str(), stdout);
  } else if (cli.get_bool("dump-json", false)) {
    std::fputs(sched.to_json(faults).c_str(), stdout);
  }
  if (!cli.get_bool("quiet", false)) {
    std::fprintf(stderr, "%s %s size=%llu: %lld transfers, %llu covered pairs\n%s\n",
                 info->name, options.net.shape.to_string().c_str(),
                 static_cast<unsigned long long>(options.msg_bytes),
                 static_cast<long long>(report.transfers),
                 static_cast<unsigned long long>(report.covered_pairs),
                 report.to_string().c_str());
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schedule_lint: %s\n", e.what());
    return 2;
  }
}
