// schedule_synth: beam-search synthesis of CommSchedule programs.
//
//   schedule_synth --shape 4x4x8 --size 240
//   schedule_synth --shape 4x4x8 --size 64 --faults node:2,seed:7 --jobs 8
//   schedule_synth --shape 8x4x4 --beam 6 --generations 4 --sa 32 --dump-csv
//   schedule_synth --shape 4x4x8 --cache /tmp/synth-cache
//
// Runs the seeded beam search over the genome space (direct / relay /
// 2-D combine / 3-D combine families), lint-gating every candidate and
// scoring survivors by short simulations through the harness thread pool.
// Prints the winning genome, its simulated cycles and the best registry
// baseline for the same problem. With --cache DIR, consults/updates the
// content-addressed winner store so repeated queries are O(1).
//
// The search is deterministic per (--search-seed, budget knobs): --jobs
// only changes wall-clock, never the winner.
//
// Exit codes: 0 = winner found and lints clean, 1 = no viable schedule
// found within budget, 2 = usage error.
#include <cstdio>
#include <exception>
#include <string>

#include "src/coll/schedule_lint.hpp"
#include "src/coll/synth.hpp"
#include "src/util/shape_arg.hpp"
#include "src/util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace bgl;

  util::Cli cli(argc, argv);
  cli.describe("shape", "partition shape, e.g. 4x4x8 (default 4x4x4)");
  cli.describe("size", "message bytes per destination (default 240)");
  cli.describe("seed", "evaluation network seed (default 1)");
  cli.describe("search-seed", "beam/SA randomization seed (default 1)");
  cli.describe("faults", "fault spec, e.g. link:0.05,node:2,seed:7 (see faults.hpp)");
  cli.describe("beam", "beam width (default 4)");
  cli.describe("generations", "beam generations (default 3)");
  cli.describe("mutations", "mutations per survivor per generation (default 4)");
  cli.describe("sa", "simulated-annealing refinement steps (default 0)");
  cli.describe("jobs", "scoring worker threads; never changes the winner (default 1)");
  cli.describe("sim-threads",
               "simulator slab workers per scoring run; deterministic per "
               "(seed, N) (default 1)");
  cli.describe("timeout-ms", "per-candidate wall-clock kill switch (default off)");
  cli.describe("cache", "winner-cache directory; hit skips the search");
  cli.describe("dump-csv", "print the winning schedule's transfer table as CSV");
  cli.describe("dump-json", "print the winning schedule as JSON");
  cli.describe("quiet", "suppress the report lines; exit code only");
  cli.validate();

  coll::synth::SynthOptions opts;
  opts.net.shape = util::shape_arg_or_exit(cli.get("shape", "4x4x4"), cli.program());
  opts.net.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  opts.msg_bytes = static_cast<std::uint64_t>(cli.get_int("size", 240));
  opts.seed = static_cast<std::uint64_t>(cli.get_int("search-seed", 1));
  opts.beam_width = static_cast<int>(cli.get_int("beam", 4));
  opts.generations = static_cast<int>(cli.get_int("generations", 3));
  opts.mutations_per_survivor = static_cast<int>(cli.get_int("mutations", 4));
  opts.sa_steps = static_cast<int>(cli.get_int("sa", 0));
  opts.jobs = static_cast<int>(cli.get_int("jobs", 1));
  opts.sim_threads = static_cast<int>(cli.get_int("sim-threads", 1));
  opts.wall_timeout_ms = cli.get_double("timeout-ms", 0.0);

  const std::string fault_spec = cli.get("faults", "");
  if (!fault_spec.empty()) opts.net.faults = net::parse_fault_spec(fault_spec);

  const std::string cache_dir = cli.get("cache", "");
  coll::synth::SynthResult result;
  bool cache_hit = false;
  if (!cache_dir.empty()) {
    const coll::synth::SynthCache cache(cache_dir);
    const std::string key = coll::synth::SynthCache::problem_key(
        opts.net.shape, opts.msg_bytes, opts.net.faults);
    coll::synth::CacheEntry probe;
    cache_hit = cache.lookup(key, probe);
    result = coll::synth::synthesize_cached(opts, cache);
  } else {
    result = coll::synth::synthesize(opts);
  }

  const bool viable = result.best.lint_ok && result.best.drained;
  const bool quiet = cli.get_bool("quiet", false);

  if (viable && (cli.get_bool("dump-csv", false) || cli.get_bool("dump-json", false))) {
    // Rebuild the winner exactly as it was scored: same planning-fault rule
    // as run_schedule (a delayed strike is invisible at plan time).
    const net::FaultPlan plan(opts.net, opts.net.shape);
    const net::FaultPlan* faults = plan.enabled() ? &plan : nullptr;
    const net::FaultPlan* planning =
        (faults != nullptr && opts.net.faults.fail_at > 0) ? nullptr : faults;
    const coll::CommSchedule sched = coll::synth::build_genome_schedule(
        result.best.genome, opts.net, opts.msg_bytes, planning);
    if (cli.get_bool("dump-csv", false)) {
      std::fputs(sched.to_csv(planning).c_str(), stdout);
    } else {
      std::fputs(sched.to_json(planning).c_str(), stdout);
    }
  }

  if (!quiet) {
    if (viable) {
      std::fprintf(stderr, "winner %s: %llu cycles%s\n",
                   result.best.genome.key().c_str(),
                   static_cast<unsigned long long>(result.best.cycles),
                   cache_hit ? " (cached)" : "");
    } else {
      std::fprintf(stderr, "no viable schedule found within budget\n");
    }
    if (!result.baseline_name.empty()) {
      std::fprintf(stderr, "baseline %s: %llu cycles\n", result.baseline_name.c_str(),
                   static_cast<unsigned long long>(result.baseline_cycles));
    }
    if (!cache_hit) {
      std::fprintf(stderr, "evaluated %d candidates (%d lint-rejected)\n",
                   result.evaluated, result.lint_rejected);
    }
  }
  return viable ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schedule_synth: %s\n", e.what());
    return 2;
  }
}
