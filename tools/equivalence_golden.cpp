// Regenerates tests/golden/schedule_equivalence.txt: the pinned per-case
// metrics of the 34-run equivalence suite (17 cases x fault-free/faulted).
//
//   ./equivalence_golden > ../tests/golden/schedule_equivalence.txt
//
// The numbers were captured from the build in which the legacy per-strategy
// clients were bit-identical to the schedule-IR executor; rerun this only
// when an intentional behavior change re-pins the suite (and say so in the
// commit). Format: one space-separated record per line,
//   name variant elapsed events packets payload unreachable pairs_complete
//   reachable_complete links_mean matrix_fnv reachable_fnv
#include <cstdio>
#include <cstdlib>

#include "src/coll/alltoall.hpp"
#include "tests/equivalence_cases.hpp"

int main() {
  using namespace bgl::coll;
  std::printf("# schedule-equivalence golden: 17 cases x {fault_free,faulted}\n");
  std::printf(
      "# name variant elapsed events packets payload unreachable "
      "pairs_complete reachable_complete links_mean matrix_fnv reachable_fnv\n");
  for (const EquivCase& c : kEquivCases) {
    for (const bool faulted : {false, true}) {
      AlltoallOptions options = equiv_options(c, faulted);
      const auto nodes = static_cast<std::int32_t>(options.net.shape.nodes());
      DeliveryMatrix matrix(nodes);
      options.deliveries = &matrix;
      const RunResult result = run_alltoall(c.kind, options);
      if (!result.drained) {
        std::fprintf(stderr, "case %s did not drain\n", c.name);
        return 1;
      }
      std::printf("%s %s %llu %llu %llu %llu %llu %llu %d %.17g %llx %llx\n",
                  c.name, faulted ? "faulted" : "fault_free",
                  static_cast<unsigned long long>(result.elapsed_cycles),
                  static_cast<unsigned long long>(result.events),
                  static_cast<unsigned long long>(result.packets_delivered),
                  static_cast<unsigned long long>(result.payload_bytes),
                  static_cast<unsigned long long>(result.unreachable_pairs),
                  static_cast<unsigned long long>(result.pairs_complete),
                  result.reachable_complete ? 1 : 0, result.links.overall_mean,
                  static_cast<unsigned long long>(equiv_matrix_fnv(matrix)),
                  static_cast<unsigned long long>(
                      equiv_reachable_fnv(result.reachable, nodes)));
    }
  }
  return 0;
}
