// Cross-bench sweep runner (ROADMAP item 6): regenerates every table/figure
// from one sharded command. Reads bench/manifest.json — a one-entry-per-line
// list of (name, binary, args) — and runs each selected entry, capturing its
// stdout/stderr to <out>/<name>.log next to whatever CSV/JSON sinks the
// entry's own args request.
//
//   tools/run_manifest                         # run everything, ./RESULTS
//   tools/run_manifest --shard 0/4             # entries 0, 4, 8, ... only
//   tools/run_manifest --only fig --dry-run    # print fig* commands
//   tools/run_manifest --extra="--full --jobs 4"   (= form: value starts with --)
//
// Sharding is by entry, so four machines with --shard i/4 regenerate the
// whole suite in one pass; the per-bench CSV artifacts are deterministic for
// a fixed seed regardless of which shard produced them. The runner exits
// nonzero if any entry fails, after running all of them.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

struct Entry {
  std::string name;
  std::string binary;
  std::string args;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string tag = "\"" + key + "\": \"";
  const auto pos = line.find(tag);
  if (pos == std::string::npos) return {};
  const auto begin = pos + tag.size();
  const auto end = line.find('"', begin);
  return end == std::string::npos ? std::string{} : line.substr(begin, end - begin);
}

/// One manifest entry per line keeps the parser a string scan, the same
/// convention as the BENCH_*.json artifacts.
std::vector<Entry> load_manifest(const std::string& path) {
  std::vector<Entry> entries;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read manifest: " + path);
  std::string line;
  while (std::getline(in, line)) {
    Entry e;
    e.name = field(line, "name");
    e.binary = field(line, "binary");
    e.args = field(line, "args");
    if (!e.name.empty() && !e.binary.empty()) entries.push_back(e);
  }
  if (entries.empty())
    throw std::runtime_error("manifest has no entries: " + path);
  return entries;
}

void replace_all(std::string& text, const std::string& from,
                 const std::string& to) {
  for (auto pos = text.find(from); pos != std::string::npos;
       pos = text.find(from, pos + to.size())) {
    text.replace(pos, from.size(), to);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgl;
  util::Cli cli(argc, argv);
  cli.describe("manifest", "manifest path (default bench/manifest.json)");
  cli.describe("build-dir", "directory holding the bench binaries (default .)");
  cli.describe("out", "artifact directory, created if missing (default RESULTS)");
  cli.describe("shard", "i/N: run only entries with index % N == i");
  cli.describe("only", "substring filter on entry names");
  cli.describe("extra",
               "flags appended to every command; use the = form because the "
               "value starts with dashes (e.g. --extra=\"--full --jobs 4\")");
  cli.describe("list", "print the selected entries and exit");
  cli.describe("dry-run", "print the commands without running them");
  try {
    cli.validate();

    const std::string manifest_path = cli.get("manifest", "bench/manifest.json");
    const std::string build_dir = cli.get("build-dir", ".");
    const std::string out_dir = cli.get("out", "RESULTS");
    const std::string only = cli.get("only", "");
    const std::string extra = cli.get("extra", "");
    const bool list_only = cli.get_bool("list", false);
    const bool dry_run = cli.get_bool("dry-run", false);

    std::int64_t shard_index = 0, shard_count = 1;
    if (const std::string shard = cli.get("shard", ""); !shard.empty()) {
      const auto slash = shard.find('/');
      if (slash == std::string::npos)
        throw std::runtime_error("--shard wants i/N, got: " + shard);
      shard_index = util::parse_strict_int(shard.substr(0, slash), "--shard index");
      shard_count = util::parse_strict_int(shard.substr(slash + 1), "--shard count");
      if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count)
        throw std::runtime_error("--shard wants 0 <= i < N, got: " + shard);
    }

    const auto all = load_manifest(manifest_path);
    std::vector<std::pair<std::size_t, Entry>> selected;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (!only.empty() && all[i].name.find(only) == std::string::npos) continue;
      selected.emplace_back(i, all[i]);
    }
    // Shard by position in the *filtered* list so --only + --shard compose.
    std::vector<std::pair<std::size_t, Entry>> mine;
    for (std::size_t i = 0; i < selected.size(); ++i) {
      if (static_cast<std::int64_t>(i % static_cast<std::size_t>(shard_count)) ==
          shard_index) {
        mine.push_back(selected[i]);
      }
    }

    if (list_only) {
      for (const auto& [index, e] : mine)
        std::printf("%2zu  %-24s %s %s\n", index, e.name.c_str(),
                    e.binary.c_str(), e.args.c_str());
      return 0;
    }
    if (mine.empty()) {
      std::fprintf(stderr, "no entries selected (of %zu in %s)\n", all.size(),
                   manifest_path.c_str());
      return 1;
    }
    if (!dry_run) std::filesystem::create_directories(out_dir);

    struct Outcome {
      std::string name;
      int exit_code = 0;
    };
    std::vector<Outcome> outcomes;
    for (const auto& [index, e] : mine) {
      std::string args = e.args;
      replace_all(args, "{out}", out_dir);
      std::string command = build_dir + "/" + e.binary + " " + args;
      if (!extra.empty()) command += " " + extra;
      command += " > " + out_dir + "/" + e.name + ".log 2>&1";
      if (dry_run) {
        std::printf("%s\n", command.c_str());
        continue;
      }
      std::printf("[%zu/%zu] %s ... ", outcomes.size() + 1, mine.size(),
                  e.name.c_str());
      std::fflush(stdout);
      const int status = std::system(command.c_str());
      const int code =
          status < 0 ? status : (status & 0x7f) != 0 ? 128 : (status >> 8) & 0xff;
      std::printf("%s\n", code == 0 ? "ok" : "FAIL");
      outcomes.push_back({e.name, code});
    }
    if (dry_run) return 0;

    util::Table table({"entry", "status", "log"});
    int failures = 0;
    for (const Outcome& o : outcomes) {
      failures += o.exit_code != 0 ? 1 : 0;
      table.add_row({o.name,
                     o.exit_code == 0 ? "ok" : "exit " + std::to_string(o.exit_code),
                     out_dir + "/" + o.name + ".log"});
    }
    table.print();
    if (failures != 0) {
      std::fprintf(stderr, "%d of %zu entries failed\n", failures,
                   outcomes.size());
      return 1;
    }
    std::printf("All %zu entries ok; artifacts in %s/\n", outcomes.size(),
                out_dir.c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", cli.program().c_str(), error.what());
    return 2;
  }
}
